// Package workload provides the synthetic mutator programs standing in for
// the DaCapo benchmarks of the paper's evaluation (§5).
//
// We cannot run Java, so each benchmark is a deterministic mutator with a
// distinct allocation-size distribution, live-set shape, survival profile
// and pointer-mutation behaviour, calibrated to the role the paper assigns
// it: pmd and jython are medium-object heavy (hit hardest by
// fragmentation), xalan predominantly allocates large arrays (leaning on
// perfect pages), hsqldb carries the largest live set (worst full-heap
// collection cost), lusearch exists in a buggy variant that needlessly
// allocates a large array in its hot loop and a patched lusearch-fix
// (§5, [24]). The mutators exercise the identical allocator and collector
// code paths the paper measures: bump allocation, overflow allocation for
// medium objects, the large object space, barriers, and evacuation.
package workload

import (
	"fmt"
	"math/rand"

	"wearmem/internal/failmap"
	"wearmem/internal/heap"
	"wearmem/internal/stats"
	"wearmem/internal/vm"
)

// Profile declares a benchmark's behaviour. All sizes are in bytes.
type Profile struct {
	Name string

	// Long-lived state built during setup.
	LiveListNodes  int // linked-list nodes (2 refs + payload each)
	LiveArrayBytes int // rooted byte arrays
	RegistrySlots  int // rooted reference-array registry of survivors

	// Per-iteration behaviour.
	ChurnPerIter int     // bytes of fresh allocation per iteration
	SmallFrac    float64 // fraction of churn quanta that are small
	MediumFrac   float64 // ... medium (the rest is large / LOS)
	SmallSize    [2]int  // [min,max) small object payload
	MediumSize   [2]int
	LargeSize    [2]int
	SurviveEvery int // every n-th churn object is installed in the registry
	MutatePerIt  int // pointer mutations per iteration
	TraverseLen  int // list nodes visited per iteration
	WorkPerIt    int // abstract compute units per iteration

	// HotLoopLargeAlloc reproduces the lusearch allocation bug [24]: a
	// needless large array allocated every iteration.
	HotLoopLargeAlloc int

	// Iterations for a standard run.
	Iterations int

	// IterHook, when set, runs after every iteration (the harness uses it
	// to inject dynamic failures mid-run). It is not part of the
	// benchmark's definition and is excluded from validation.
	IterHook func(iteration int, v *vm.VM)

	// Prepare, when set, runs once on the VM before any mutator body
	// starts: scenario profiles register their object types and build
	// shared rooted structures here. The standard churn engine leaves it
	// nil.
	Prepare func(v *vm.VM) error

	// Body, when set, replaces the standard setup/iterate churn engine:
	// the profile is a scenario (e.g. the KV server) whose behaviour is
	// this function, run once per mutator with the mutator's API, its
	// index and the mutator count, its iteration share, and a yield
	// callback the body must invoke once per iteration (the engines park
	// at safepoints and fire IterHook there). Scenario profiles still
	// declare Iterations and MinHeapBytes; the churn-mix fields are
	// unused.
	Body func(api MutAPI, mut, mutators, iterations int, yield func()) error

	// Latency, when set by the harness, returns mutator i's latency
	// shard; scenario bodies record per-operation latency into it. Nil
	// disables capture. Like IterHook it is run state, not part of the
	// benchmark's definition.
	Latency func(mut int) *stats.LatencyShard

	// MinHeapBytes is the benchmark's calibrated minimum heap (the unit of
	// the paper's heap-size axes), found by binary search with
	// `wearbench -calibrate` and declared with ~15% headroom. When zero,
	// an analytic estimate scaled by MinHeapFactor is used instead.
	MinHeapBytes int
	// MinHeapFactor scales the analytic live-set estimate when no
	// calibrated minimum is declared.
	MinHeapFactor float64
}

const (
	nodeSize = 40
	nodeNext = 8
	nodeAlt  = 16
	nodeVal  = 24
)

// LiveBytes estimates the benchmark's steady live set.
func (p *Profile) LiveBytes() int {
	bytes := p.LiveListNodes * nodeSize
	bytes += p.LiveArrayBytes
	// Registry array plus the survivors it retains: slots only fill as
	// churn objects survive, so a short run may never populate them all.
	filled := p.RegistrySlots
	if p.SurviveEvery > 0 && p.avgObjectSize() > 0 {
		quanta := p.Iterations * p.ChurnPerIter / p.avgObjectSize()
		if s := quanta / p.SurviveEvery; s < filled {
			filled = s
		}
	}
	bytes += p.RegistrySlots*heap.WordSize + filled*p.avgObjectSize()
	return bytes
}

func (p *Profile) avgObjectSize() int {
	s := float64(p.SmallSize[0]+p.SmallSize[1]) / 2 * p.SmallFrac
	s += float64(p.MediumSize[0]+p.MediumSize[1]) / 2 * p.MediumFrac
	s += float64(p.LargeSize[0]+p.LargeSize[1]) / 2 * (1 - p.SmallFrac - p.MediumFrac)
	return int(s)
}

// MinHeap returns the benchmark's minimum heap, the unit of the paper's
// heap-size axes: the calibrated MinHeapBytes when declared, otherwise an
// analytic estimate.
func (p *Profile) MinHeap() int {
	min := p.MinHeapBytes
	if min == 0 {
		f := p.MinHeapFactor
		if f == 0 {
			f = 2.0
		}
		min = int(float64(p.LiveBytes()) * f)
	}
	// Round up to a whole number of 32 KB blocks.
	const block = 32 << 10
	min = (min + block - 1) / block * block
	if min < 4*block {
		min = 4 * block
	}
	return min
}

// Types registers the benchmark object types on a VM.
type Types struct {
	Node  *heap.Type
	Bytes *heap.Type
	Refs  *heap.Type
}

// RegisterTypes installs the workload types on a fresh VM.
func RegisterTypes(v *vm.VM) *Types {
	return &Types{
		Node: v.RegisterType(&heap.Type{
			Name: "wl.node", Kind: heap.KindFixed, Size: nodeSize,
			RefOffsets: []int{nodeNext, nodeAlt},
		}),
		Bytes: v.RegisterType(&heap.Type{Name: "wl.bytes", Kind: heap.KindScalarArray, ElemSize: 1}),
		Refs:  v.RegisterType(&heap.Type{Name: "wl.refs", Kind: heap.KindRefArray}),
	}
}

// MutAPI is the runtime surface a run drives: the VM's plain entry points
// (the historical single-mutator path, charging the shared clock) or one
// vm.Mutator, whose allocations go through its private Immix context and
// whose accessors charge its clock — an alias of the shared clock on the
// baton engine (bit-identical accounting), a private shard on the threaded
// one. Both *vm.VM and *vm.Mutator satisfy it; scenario bodies receive it
// and may type-assert for engine-specific extras (clocks, GC telemetry).
type MutAPI interface {
	New(ty *heap.Type) (heap.Addr, error)
	NewArray(ty *heap.Type, n int) (heap.Addr, error)
	ReadRef(obj heap.Addr, off int) heap.Addr
	WriteRef(obj heap.Addr, off int, val heap.Addr)
	ReadWord(obj heap.Addr, off int) uint64
	WriteWord(obj heap.Addr, off int, val uint64)
	ArrayRef(arr heap.Addr, i int) heap.Addr
	SetArrayRef(arr heap.Addr, i int, val heap.Addr)
	ArrayByte(arr heap.Addr, i int) byte
	SetArrayByte(arr heap.Addr, i int, b byte)
	ArrayLen(arr heap.Addr) int
	AddRoot(slot *heap.Addr)
	RemoveRoot(slot *heap.Addr)
	Work(n int)
}

// runState is one mutator's slice of a benchmark run: its long-lived
// structures, its deterministic rng stream, and its churn counter.
type runState struct {
	head       heap.Addr
	liveArrays []heap.Addr
	registry   heap.Addr
	churn      int
	rng        *rand.Rand
}

// Run executes the benchmark on the VM: setup, then p.Iterations (or the
// override, if positive) mutator iterations. It returns vm.ErrOutOfMemory
// when the heap cannot hold the workload (a DNF).
func (p *Profile) Run(v *vm.VM, iterations int) error {
	if iterations <= 0 {
		iterations = p.Iterations
	}
	if p.Body != nil {
		if p.Prepare != nil {
			if err := p.Prepare(v); err != nil {
				return err
			}
		}
		it := 0
		return p.Body(v, 0, 1, iterations, func() {
			if p.IterHook != nil {
				p.IterHook(it, v)
				it++
			}
		})
	}
	ty := RegisterTypes(v)
	st := &runState{rng: rand.New(rand.NewSource(int64(len(p.Name)) + 12345))}
	if err := p.setup(v, ty, st, p.LiveListNodes, p.LiveArrayBytes, p.RegistrySlots); err != nil {
		return err
	}
	for it := 0; it < iterations; it++ {
		if err := p.iterate(v, ty, st); err != nil {
			return err
		}
		if p.IterHook != nil {
			p.IterHook(it, v)
		}
	}
	return nil
}

// setup builds the long-lived structures: the linked list, the rooted live
// arrays and the survivor registry. The share arguments let a multi-mutator
// run split the structures across contexts; Run passes the full profile.
func (p *Profile) setup(api MutAPI, ty *Types, st *runState, listNodes, arrayBytes, regSlots int) error {
	api.AddRoot(&st.head)
	for i := 0; i < listNodes; i++ {
		a, err := api.New(ty.Node)
		if err != nil {
			return err
		}
		api.WriteWord(a, nodeVal, uint64(i))
		api.WriteRef(a, nodeNext, st.head)
		st.head = a
	}
	// Live arrays are rooted as they are created: a collection triggered by
	// a later allocation may move earlier ones. The slice is preallocated
	// so the registered slot pointers stay valid.
	st.liveArrays = make([]heap.Addr, 0, (arrayBytes+(4<<10)-1)/(4<<10))
	remaining := arrayBytes
	for remaining > 0 {
		n := 4 << 10
		if n > remaining {
			n = remaining
		}
		a, err := api.NewArray(ty.Bytes, n)
		if err != nil {
			return err
		}
		st.liveArrays = append(st.liveArrays, a)
		api.AddRoot(&st.liveArrays[len(st.liveArrays)-1])
		remaining -= n
	}
	api.AddRoot(&st.registry)
	if regSlots > 0 {
		a, err := api.NewArray(ty.Refs, regSlots)
		if err != nil {
			return err
		}
		st.registry = a
	}
	return nil
}

// iterate runs one benchmark iteration against the mutator's state. head
// and registry live in rooted slots: any allocation below may trigger a
// moving collection, so they are re-read through st at every use.
func (p *Profile) iterate(api MutAPI, ty *Types, st *runState) error {
	rng := st.rng
	// Churn allocation.
	allocated := 0
	for allocated < p.ChurnPerIter {
		size, kind := p.pickSize(rng)
		var obj heap.Addr
		var err error
		switch kind {
		case 0: // node-bearing small object
			obj, err = api.New(ty.Node)
			size = nodeSize
		default:
			obj, err = api.NewArray(ty.Bytes, size)
		}
		if err != nil {
			return err
		}
		allocated += size
		st.churn++
		if st.registry != 0 && p.SurviveEvery > 0 && st.churn%p.SurviveEvery == 0 {
			slot := rng.Intn(api.ArrayLen(st.registry))
			api.SetArrayRef(st.registry, slot, obj) // old survivor dies here
		}
	}
	// The lusearch hot-loop bug: a needless large allocation per iteration.
	if p.HotLoopLargeAlloc > 0 {
		if _, err := api.NewArray(ty.Bytes, p.HotLoopLargeAlloc); err != nil {
			return err
		}
	}
	// Pointer mutations over the live list (exercises the barrier). The
	// cursor is rooted: each New below is a GC point that may move the
	// node it refers to.
	a := st.head
	api.AddRoot(&a)
	for m := 0; m < p.MutatePerIt && a != 0; m++ {
		fresh, err := api.New(ty.Node)
		if err != nil {
			api.RemoveRoot(&a)
			return err
		}
		api.WriteWord(fresh, nodeVal, rng.Uint64()>>32)
		api.WriteRef(a, nodeAlt, fresh) // old -> young edge
		a = api.ReadRef(a, nodeNext)
	}
	api.RemoveRoot(&a)
	// Traversal (read locality; no GC points).
	a = st.head
	sum := uint64(0)
	for i := 0; i < p.TraverseLen && a != 0; i++ {
		sum += api.ReadWord(a, nodeVal)
		a = api.ReadRef(a, nodeNext)
	}
	_ = sum
	api.Work(p.WorkPerIt)
	return nil
}

// pickSize draws an allocation size from the benchmark's mix. kind 0 means
// a node object, 1 a byte array.
func (p *Profile) pickSize(rng *rand.Rand) (size, kind int) {
	r := rng.Float64()
	switch {
	case r < p.SmallFrac:
		if rng.Intn(2) == 0 {
			return nodeSize, 0
		}
		return uniform(rng, p.SmallSize), 1
	case r < p.SmallFrac+p.MediumFrac:
		return uniform(rng, p.MediumSize), 1
	default:
		return uniform(rng, p.LargeSize), 1
	}
}

func uniform(rng *rand.Rand, bounds [2]int) int {
	if bounds[1] <= bounds[0] {
		return bounds[0]
	}
	return bounds[0] + rng.Intn(bounds[1]-bounds[0])
}

// TotalChurn estimates the bytes a standard run allocates.
func (p *Profile) TotalChurn() int {
	return p.Iterations * (p.ChurnPerIter + p.HotLoopLargeAlloc)
}

// Validate sanity-checks a profile.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile without name")
	}
	if p.Body != nil {
		// Scenario profiles define their own behaviour; the churn-mix
		// fields are unused, but the harness still needs a heap unit and
		// an iteration count.
		if p.Iterations <= 0 {
			return fmt.Errorf("workload %s: scenario needs iterations", p.Name)
		}
		if p.MinHeapBytes <= 0 {
			return fmt.Errorf("workload %s: scenario needs a calibrated MinHeapBytes", p.Name)
		}
		return nil
	}
	if p.SmallFrac < 0 || p.MediumFrac < 0 || p.SmallFrac+p.MediumFrac > 1 {
		return fmt.Errorf("workload %s: bad size mix", p.Name)
	}
	if p.ChurnPerIter <= 0 || p.Iterations <= 0 {
		return fmt.Errorf("workload %s: needs churn and iterations", p.Name)
	}
	if p.MinHeap() < 4*failmap.PageSize {
		return fmt.Errorf("workload %s: implausible min heap", p.Name)
	}
	return nil
}
