package workload

import (
	"math/rand"
	"sync"

	"wearmem/internal/sched"
	"wearmem/internal/vm"
)

// mutatorSeedStride separates the per-mutator rng streams; mutator i of a
// profile seeds with the profile's base seed plus i times this prime.
const mutatorSeedStride = 7919

// Share splits n across k mutators as evenly as possible, the first n%k
// mutators taking one extra — the deterministic partition RunMutators uses
// for live structures and iterations.
func Share(n, k, i int) int {
	s := n / k
	if i < n%k {
		s++
	}
	return s
}

// RunMutators executes the benchmark split across the given number of
// mutators, driven by the deterministic baton scheduler: each mutator owns
// a share of the live structures, a share of the iterations, and its own
// rng stream, allocates through its private Immix context, and parks at a
// safepoint before every yield so a collection (or failure up-call)
// triggered by any mutator observes the stop-the-world condition. With
// mutators <= 1 the run is exactly Run — the historical single-mutator
// path, bit for bit. The first mutator to fail aborts the others; its
// error is returned (vm.ErrOutOfMemory still reports a DNF through
// errors.Is).
func (p *Profile) RunMutators(v *vm.VM, iterations, mutators int) error {
	if v.Threaded() {
		return p.runThreaded(v, iterations, mutators)
	}
	if mutators <= 1 {
		return p.Run(v, iterations)
	}
	if iterations <= 0 {
		iterations = p.Iterations
	}
	muts := make([]*vm.Mutator, mutators)
	muts[0] = v.Mutator0()
	for i := 1; i < mutators; i++ {
		muts[i] = v.AttachMutator()
	}
	// The shared iteration counter orders IterHook calls (the harness's
	// fault-injection schedule) across mutators; the baton serializes the
	// increments, so the sequence is deterministic.
	shared := 0
	if p.Body != nil {
		// Scenario profile: shared structures are built once on the VM,
		// then each mutator runs the scenario body over its iteration
		// share, yielding the baton (and firing IterHook) once per
		// iteration through the callback.
		if p.Prepare != nil {
			if err := p.Prepare(v); err != nil {
				return err
			}
		}
		tasks := make([]sched.Func, mutators)
		for i := range tasks {
			m := muts[i]
			mut := i
			iters := Share(iterations, mutators, i)
			tasks[i] = func(y sched.Yielder) error {
				m.Unpark()
				defer m.Park()
				return p.Body(m, mut, mutators, iters, func() {
					m.Park()
					y.Yield()
					m.Unpark()
					if p.IterHook != nil {
						p.IterHook(shared, v)
						shared++
					}
				})
			}
		}
		return sched.Run(tasks...)
	}
	ty := RegisterTypes(v)
	tasks := make([]sched.Func, mutators)
	for i := range tasks {
		m := muts[i]
		seed := int64(len(p.Name)) + 12345 + mutatorSeedStride*int64(i)
		iters := Share(iterations, mutators, i)
		listNodes := Share(p.LiveListNodes, mutators, i)
		arrayBytes := Share(p.LiveArrayBytes, mutators, i)
		regSlots := Share(p.RegistrySlots, mutators, i)
		tasks[i] = func(y sched.Yielder) error {
			m.Unpark()
			defer m.Park()
			st := &runState{rng: rand.New(rand.NewSource(seed))}
			if err := p.setup(m, ty, st, listNodes, arrayBytes, regSlots); err != nil {
				return err
			}
			for it := 0; it < iters; it++ {
				// Yield between iterations: park at the safepoint, hand the
				// baton over, unpark when it comes back.
				m.Park()
				y.Yield()
				m.Unpark()
				if err := p.iterate(m, ty, st); err != nil {
					return err
				}
				if p.IterHook != nil {
					p.IterHook(shared, v)
					shared++
				}
			}
			return nil
		}
	}
	return sched.Run(tasks...)
}

// runThreaded executes the benchmark split across real OS-scheduled
// mutator goroutines — the threaded engine's counterpart of the baton
// loop above. Interleaving is whatever the host decides, so the run is
// not byte-comparable to the baton engine; only engine-invariant outcomes
// (the live census, failure outcomes, verifier cleanliness) match. Each
// task polls a safepoint between iterations so stop-the-world requests
// from any mutator's allocation slow path are honored promptly; IterHook
// calls are serialized under a mutex (their global order is nondeterministic
// by design).
func (p *Profile) runThreaded(v *vm.VM, iterations, mutators int) error {
	if iterations <= 0 {
		iterations = p.Iterations
	}
	if mutators < 1 {
		mutators = 1
	}
	muts := make([]*vm.Mutator, mutators)
	muts[0] = v.Mutator0()
	for i := 1; i < mutators; i++ {
		muts[i] = v.AttachMutator()
	}
	var hookMu sync.Mutex
	shared := 0
	if p.Body != nil {
		// Scenario profile on real goroutines: shared structures are
		// built single-threaded before the world starts; the yield
		// callback polls the safepoint and serializes IterHook.
		if p.Prepare != nil {
			if err := p.Prepare(v); err != nil {
				return err
			}
		}
		tasks := make([]func() error, mutators)
		for i := range tasks {
			m := muts[i]
			mut := i
			iters := Share(iterations, mutators, i)
			tasks[i] = func() error {
				return p.Body(m, mut, mutators, iters, func() {
					m.Safepoint()
					if p.IterHook != nil {
						hookMu.Lock()
						p.IterHook(shared, v)
						shared++
						hookMu.Unlock()
					}
				})
			}
		}
		return v.RunThreads(tasks...)
	}
	ty := RegisterTypes(v)
	tasks := make([]func() error, mutators)
	for i := range tasks {
		m := muts[i]
		seed := int64(len(p.Name)) + 12345 + mutatorSeedStride*int64(i)
		iters := Share(iterations, mutators, i)
		listNodes := Share(p.LiveListNodes, mutators, i)
		arrayBytes := Share(p.LiveArrayBytes, mutators, i)
		regSlots := Share(p.RegistrySlots, mutators, i)
		tasks[i] = func() error {
			st := &runState{rng: rand.New(rand.NewSource(seed))}
			if err := p.setup(m, ty, st, listNodes, arrayBytes, regSlots); err != nil {
				return err
			}
			for it := 0; it < iters; it++ {
				m.Safepoint()
				if err := p.iterate(m, ty, st); err != nil {
					return err
				}
				if p.IterHook != nil {
					hookMu.Lock()
					p.IterHook(shared, v)
					shared++
					hookMu.Unlock()
				}
			}
			return nil
		}
	}
	return v.RunThreads(tasks...)
}
