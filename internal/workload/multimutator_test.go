package workload

import (
	"testing"

	"wearmem/internal/vm"
)

func runProfileMutators(t *testing.T, p *Profile, heapBytes int, rate float64, cluster, iters, mutators, traceWorkers int) (*vm.VM, error) {
	t.Helper()
	v, err := buildVM(t, heapBytes, rate, cluster, traceWorkers)
	if err != nil {
		t.Fatal(err)
	}
	return v, p.RunMutators(v, iters, mutators)
}

// RunMutators with one mutator must be exactly Run — the single-mutator
// path the golden reports are pinned to.
func TestRunMutatorsOneEqualsRun(t *testing.T) {
	p := Pmd()
	v1, err1 := runProfile(t, p, 2*p.MinHeap(), 0.25, 2, 40)
	v2, err2 := runProfileMutators(t, p, 2*p.MinHeap(), 0.25, 2, 40, 1, 0)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if v1.Clock().Now() != v2.Clock().Now() {
		t.Fatalf("RunMutators(1) diverged from Run: %d vs %d cycles", v2.Clock().Now(), v1.Clock().Now())
	}
	if *v1.GCStats() != *v2.GCStats() {
		t.Fatalf("GC stats diverged:\n%+v\n%+v", *v1.GCStats(), *v2.GCStats())
	}
}

// Two identical multi-mutator runs must agree cycle for cycle — the
// scheduler, the context handoffs and the parallel trace are all
// deterministic.
func TestRunMutatorsDeterministic(t *testing.T) {
	p := Pmd()
	for _, mutators := range []int{2, 4} {
		v1, err1 := runProfileMutators(t, p, 3*p.MinHeap(), 0.25, 2, 40, mutators, mutators)
		v2, err2 := runProfileMutators(t, p, 3*p.MinHeap(), 0.25, 2, 40, mutators, mutators)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if v1.Clock().Now() != v2.Clock().Now() {
			t.Fatalf("mutators=%d: identical runs diverge: %d vs %d cycles",
				mutators, v1.Clock().Now(), v2.Clock().Now())
		}
		if *v1.GCStats() != *v2.GCStats() {
			t.Fatalf("mutators=%d: GC stats diverge:\n%+v\n%+v", mutators, *v1.GCStats(), *v2.GCStats())
		}
	}
}

// A multi-mutator run must complete under the paper's most stressed
// reported configuration and actually collect in parallel.
func TestRunMutatorsUnderClusteredFailures(t *testing.T) {
	p := Sunflow()
	v, err := runProfileMutators(t, p, 3*p.MinHeap(), 0.5, 2, 60, 4, 4)
	if err != nil {
		t.Fatalf("DNF: %v", err)
	}
	st := v.GCStats()
	if st.Collections == 0 {
		t.Fatal("no collections in multi-mutator run")
	}
	if st.ParallelTraces == 0 {
		t.Fatal("no parallel traces despite TraceWorkers=4")
	}
	if st.TraceCritCycles >= st.TraceWorkCycles {
		t.Fatalf("critical path %d not below total work %d", st.TraceCritCycles, st.TraceWorkCycles)
	}
}

// The even partition helper: shares differ by at most one and sum to n.
func TestShare(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000} {
		for _, k := range []int{1, 2, 3, 8} {
			sum, max, min := 0, 0, n
			for i := 0; i < k; i++ {
				s := Share(n, k, i)
				sum += s
				if s > max {
					max = s
				}
				if s < min {
					min = s
				}
			}
			if sum != n {
				t.Fatalf("Share(%d,%d) sums to %d", n, k, sum)
			}
			if max-min > 1 {
				t.Fatalf("Share(%d,%d) unbalanced: max %d min %d", n, k, max, min)
			}
		}
	}
}
