package workload

// The benchmark suite: the superset of DaCapo programs the paper runs on
// Jikes RVM (§5), reproduced as synthetic profiles. Heap sizes here are
// scaled down from the Java originals (the cost model makes results
// scale-free); what matters is each benchmark's *shape*:
//
//   - pmd, jython     — many medium objects; hardest hit by fragmentation
//     (Fig. 4: pmd worst at 40% overhead under 50% failures).
//   - xalan           — predominantly very large objects; resilient under
//     two-page clustering, heavy perfect-page demand (Fig. 9(b)).
//   - hsqldb          — largest live set; worst full-heap collection cost
//     (§4.2: 44 ms worst case).
//   - fop             — medium-heavy tree builder, second-worst collection
//     cost.
//   - lusearch        — the buggy variant allocating a large array in a hot
//     loop [24], tripling the allocation rate; excluded from aggregate
//     analysis like the paper does.
//   - lusearch-fix    — the patched variant.
//   - the rest        — small-object mutators of varying rates.

// Suite returns the full benchmark suite in the paper's usual order.
func Suite() []*Profile {
	return []*Profile{
		Avrora(), Bloat(), Chart(), Eclipse(), Fop(), Hsqldb(),
		Jython(), Luindex(), LusearchFix(), Pmd(), Sunflow(), Xalan(),
	}
}

// SuiteWithBuggyLusearch additionally includes the buggy lusearch, which
// Fig. 4 reports but every aggregate excludes.
func SuiteWithBuggyLusearch() []*Profile {
	return append(Suite(), Lusearch())
}

// ByName returns the named benchmark — a built-in suite member or a
// registered extra (scenario) profile — or nil. Every call constructs a
// fresh instance: run state (IterHook, Latency) is mutated per execution.
func ByName(name string) *Profile {
	for _, p := range SuiteWithBuggyLusearch() {
		if p.Name == name {
			return p
		}
	}
	return byExtraName(name)
}

// Avrora models a low-allocation-rate event simulator.
func Avrora() *Profile {
	return &Profile{
		Name:          "avrora",
		LiveListNodes: 1200,
		RegistrySlots: 256,
		ChurnPerIter:  6 << 10,
		SmallFrac:     0.92, MediumFrac: 0.07,
		SmallSize: [2]int{16, 64}, MediumSize: [2]int{256, 512}, LargeSize: [2]int{9 << 10, 12 << 10},
		SurviveEvery: 40, MutatePerIt: 4, TraverseLen: 64, WorkPerIt: 600,
		Iterations: 1600, MinHeapBytes: 425984, MinHeapFactor: 2.2,
	}
}

// Bloat models a bytecode optimizer: small object churn over an AST.
func Bloat() *Profile {
	return &Profile{
		Name:          "bloat",
		LiveListNodes: 2000,
		RegistrySlots: 512,
		ChurnPerIter:  12 << 10,
		SmallFrac:     0.85, MediumFrac: 0.13,
		SmallSize: [2]int{16, 64}, MediumSize: [2]int{256, 1024}, LargeSize: [2]int{9 << 10, 16 << 10},
		SurviveEvery: 30, MutatePerIt: 6, TraverseLen: 96, WorkPerIt: 400,
		Iterations: 1200, MinHeapBytes: 688128, MinHeapFactor: 2.1,
	}
}

// Chart models report rendering: medium arrays for drawing primitives.
func Chart() *Profile {
	return &Profile{
		Name:           "chart",
		LiveListNodes:  1500,
		LiveArrayBytes: 96 << 10,
		RegistrySlots:  384,
		ChurnPerIter:   16 << 10,
		SmallFrac:      0.55, MediumFrac: 0.40,
		SmallSize: [2]int{16, 64}, MediumSize: [2]int{512, 2 << 10}, LargeSize: [2]int{9 << 10, 20 << 10},
		SurviveEvery: 36, MutatePerIt: 4, TraverseLen: 48, WorkPerIt: 500,
		Iterations: 2750, MinHeapBytes: 1343488, MinHeapFactor: 2.0,
	}
}

// Eclipse models an IDE workload: a large mixed live set with heavy churn.
func Eclipse() *Profile {
	return &Profile{
		Name:           "eclipse",
		LiveListNodes:  4000,
		LiveArrayBytes: 192 << 10,
		RegistrySlots:  1024,
		ChurnPerIter:   18 << 10,
		SmallFrac:      0.78, MediumFrac: 0.18,
		SmallSize: [2]int{16, 64}, MediumSize: [2]int{256, 2 << 10}, LargeSize: [2]int{9 << 10, 24 << 10},
		SurviveEvery: 24, MutatePerIt: 8, TraverseLen: 128, WorkPerIt: 700,
		Iterations: 1950, MinHeapBytes: 1867776, MinHeapFactor: 1.9,
	}
}

// Fop models XSL-FO formatting: a medium-object tree builder.
func Fop() *Profile {
	return &Profile{
		Name:          "fop",
		LiveListNodes: 2600,
		RegistrySlots: 768,
		ChurnPerIter:  14 << 10,
		SmallFrac:     0.48, MediumFrac: 0.48,
		SmallSize: [2]int{16, 64}, MediumSize: [2]int{384, 1536}, LargeSize: [2]int{9 << 10, 14 << 10},
		SurviveEvery: 22, MutatePerIt: 6, TraverseLen: 96, WorkPerIt: 450,
		Iterations: 2280, MinHeapBytes: 1409024, MinHeapFactor: 2.0,
	}
}

// Hsqldb models an in-memory database: the largest live set in the suite.
func Hsqldb() *Profile {
	return &Profile{
		Name:           "hsqldb",
		LiveListNodes:  9000,
		LiveArrayBytes: 256 << 10,
		RegistrySlots:  2048,
		ChurnPerIter:   10 << 10,
		SmallFrac:      0.80, MediumFrac: 0.18,
		SmallSize: [2]int{16, 64}, MediumSize: [2]int{256, 1 << 10}, LargeSize: [2]int{9 << 10, 12 << 10},
		SurviveEvery: 16, MutatePerIt: 10, TraverseLen: 192, WorkPerIt: 500,
		Iterations: 3600, MinHeapBytes: 2064384, MinHeapFactor: 1.8,
	}
}

// Jython models a Python interpreter: frames and dictionaries of medium
// size, the second-most fragmentation-sensitive benchmark.
func Jython() *Profile {
	return &Profile{
		Name:          "jython",
		LiveListNodes: 2200,
		RegistrySlots: 640,
		ChurnPerIter:  16 << 10,
		SmallFrac:     0.42, MediumFrac: 0.55,
		SmallSize: [2]int{16, 64}, MediumSize: [2]int{512, 2560}, LargeSize: [2]int{9 << 10, 12 << 10},
		SurviveEvery: 28, MutatePerIt: 6, TraverseLen: 80, WorkPerIt: 420,
		Iterations: 3450, MinHeapBytes: 1474560, MinHeapFactor: 2.0,
	}
}

// Luindex models document indexing: token-sized small objects.
func Luindex() *Profile {
	return &Profile{
		Name:           "luindex",
		LiveListNodes:  900,
		LiveArrayBytes: 64 << 10,
		RegistrySlots:  192,
		ChurnPerIter:   8 << 10,
		SmallFrac:      0.90, MediumFrac: 0.094,
		SmallSize: [2]int{16, 64}, MediumSize: [2]int{256, 768}, LargeSize: [2]int{9 << 10, 12 << 10},
		SurviveEvery: 48, MutatePerIt: 3, TraverseLen: 40, WorkPerIt: 520,
		Iterations: 1300, MinHeapBytes: 458752, MinHeapFactor: 2.3,
	}
}

// Lusearch is the buggy variant: a pathological large allocation in the
// hot loop triples the allocation rate [24].
func Lusearch() *Profile {
	p := LusearchFix()
	p.Name = "lusearch"
	p.HotLoopLargeAlloc = 24 << 10 // the needless hot-loop array
	p.MinHeapBytes = 393216        // transient hot-loop arrays need room
	return p
}

// LusearchFix is the patched text-search benchmark.
func LusearchFix() *Profile {
	return &Profile{
		Name:          "lusearch-fix",
		LiveListNodes: 800,
		RegistrySlots: 160,
		ChurnPerIter:  12 << 10,
		SmallFrac:     0.88, MediumFrac: 0.10,
		SmallSize: [2]int{16, 64}, MediumSize: [2]int{256, 1 << 10}, LargeSize: [2]int{9 << 10, 12 << 10},
		SurviveEvery: 56, MutatePerIt: 3, TraverseLen: 32, WorkPerIt: 380,
		Iterations: 730, MinHeapBytes: 425984, MinHeapFactor: 2.4,
	}
}

// Pmd models source-code analysis: AST nodes of medium size dominate,
// the paper's most fragmentation-sensitive benchmark.
func Pmd() *Profile {
	return &Profile{
		Name:          "pmd",
		LiveListNodes: 2400,
		RegistrySlots: 768,
		ChurnPerIter:  18 << 10,
		SmallFrac:     0.35, MediumFrac: 0.62,
		SmallSize: [2]int{16, 64}, MediumSize: [2]int{512, 2 << 10}, LargeSize: [2]int{9 << 10, 12 << 10},
		SurviveEvery: 24, MutatePerIt: 5, TraverseLen: 72, WorkPerIt: 400,
		Iterations: 4090, MinHeapBytes: 1736704, MinHeapFactor: 2.0,
	}
}

// Sunflow models a ray tracer: very high small-object allocation rate.
func Sunflow() *Profile {
	return &Profile{
		Name:          "sunflow",
		LiveListNodes: 1000,
		RegistrySlots: 256,
		ChurnPerIter:  20 << 10,
		SmallFrac:     0.94, MediumFrac: 0.05,
		SmallSize: [2]int{16, 64}, MediumSize: [2]int{256, 512}, LargeSize: [2]int{9 << 10, 12 << 10},
		SurviveEvery: 64, MutatePerIt: 3, TraverseLen: 32, WorkPerIt: 300,
		Iterations: 520, MinHeapBytes: 393216, MinHeapFactor: 2.2,
	}
}

// Xalan models XSLT transformation: predominantly very large objects,
// the paper's perfect-page-hungry benchmark.
func Xalan() *Profile {
	return &Profile{
		Name:           "xalan",
		LiveListNodes:  1200,
		LiveArrayBytes: 128 << 10,
		RegistrySlots:  256,
		ChurnPerIter:   32 << 10,
		SmallFrac:      0.40, MediumFrac: 0.15,
		SmallSize: [2]int{16, 64}, MediumSize: [2]int{512, 2 << 10}, LargeSize: [2]int{10 << 10, 40 << 10},
		SurviveEvery: 40, MutatePerIt: 4, TraverseLen: 48, WorkPerIt: 450,
		Iterations: 800, MinHeapBytes: 1572864, MinHeapFactor: 2.1,
	}
}
