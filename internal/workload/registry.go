package workload

import (
	"fmt"
	"sort"
	"sync"
)

// The extras registry holds named scenario profiles (workloads defined
// outside this package, such as the KV server) so the harness can resolve
// them through ByName exactly like the built-in suite. Constructors
// return a fresh Profile per call — run state like IterHook and Latency
// is mutated per execution, so instances must never be shared.
var (
	extraMu sync.Mutex
	extras  = map[string]func() *Profile{}
)

// RegisterExtra adds a named profile constructor to the registry. The
// name must not collide with the built-in suite or an earlier extra;
// re-registering the identical name panics so knob-encoded scenario names
// stay unambiguous. The constructor's profile must validate.
func RegisterExtra(name string, mk func() *Profile) {
	if name == "" || mk == nil {
		panic("workload: RegisterExtra needs a name and a constructor")
	}
	for _, p := range SuiteWithBuggyLusearch() {
		if p.Name == name {
			panic(fmt.Sprintf("workload: extra %q collides with the built-in suite", name))
		}
	}
	p := mk()
	if p == nil || p.Name != name {
		panic(fmt.Sprintf("workload: extra %q constructor returned a mismatched profile", name))
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	extraMu.Lock()
	defer extraMu.Unlock()
	if _, dup := extras[name]; dup {
		panic(fmt.Sprintf("workload: extra %q registered twice", name))
	}
	extras[name] = mk
}

// RegisteredExtra reports whether an extra with this name exists.
func RegisteredExtra(name string) bool {
	extraMu.Lock()
	defer extraMu.Unlock()
	_, ok := extras[name]
	return ok
}

// ExtraNames returns the registered extra names, sorted.
func ExtraNames() []string {
	extraMu.Lock()
	defer extraMu.Unlock()
	out := make([]string, 0, len(extras))
	for n := range extras {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// byExtraName returns a fresh instance of the named extra, or nil.
func byExtraName(name string) *Profile {
	extraMu.Lock()
	mk := extras[name]
	extraMu.Unlock()
	if mk == nil {
		return nil
	}
	return mk()
}
