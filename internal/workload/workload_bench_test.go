package workload

import (
	"math/rand"
	"testing"

	"wearmem/internal/failmap"
	"wearmem/internal/kernel"
	"wearmem/internal/stats"
	"wearmem/internal/vm"
)

// BenchmarkMutatorIter measures the per-iteration cost of a mutator on the
// sticky Immix runtime — the end-to-end hot path of every experiment:
// allocation, barriers, traversal, and the collections the churn provokes.
// "clean" runs on perfect memory; "faulty" on 10% failed lines with heap
// compensation, so line skipping and failure maps sit on the measured path.
// Iterations run in chunks of the profile's calibrated run length on a
// fresh runtime each — the registry live set (and therefore the minimum
// heap) is calibrated for that length, so a single b.N-long run would
// outgrow the heap — amortizing the setup phase over each chunk.
func BenchmarkMutatorIter(bm *testing.B) {
	bench := func(bm *testing.B, rate float64) {
		p := Pmd()
		heapBytes := 2 * p.MinHeap()
		for remaining := bm.N; remaining > 0; remaining -= p.Iterations {
			chunk := p.Iterations
			if chunk > remaining {
				chunk = remaining
			}
			clock := stats.NewClock(stats.DefaultCosts())
			poolPages := 8 * heapBytes / failmap.PageSize
			var inject *failmap.Map
			if rate > 0 {
				inject = failmap.New(poolPages * failmap.PageSize)
				failmap.GenerateUniform(inject, rate, rand.New(rand.NewSource(99)))
			}
			kern := kernel.New(kernel.Config{PCMPages: poolPages, Inject: inject, Clock: clock})
			v := vm.New(vm.Config{
				HeapBytes:    heapBytes,
				Compensate:   rate > 0,
				FailureRate:  rate,
				Collector:    vm.StickyImmix,
				FailureAware: true,
				Kernel:       kern,
				Clock:        clock,
			})
			if err := p.Run(v, chunk); err != nil {
				bm.Fatal(err)
			}
		}
	}
	bm.Run("clean", func(bm *testing.B) { bench(bm, 0) })
	bm.Run("faulty", func(bm *testing.B) { bench(bm, 0.10) })
}
