package workload

import (
	"math/rand"
	"testing"

	"wearmem/internal/failmap"
	"wearmem/internal/kernel"
	"wearmem/internal/stats"
	"wearmem/internal/vm"
)

func buildVM(t *testing.T, heapBytes int, rate float64, cluster, traceWorkers int) (*vm.VM, error) {
	t.Helper()
	clock := stats.NewClock(stats.DefaultCosts())
	poolPages := 8 * heapBytes / failmap.PageSize
	var inject *failmap.Map
	if rate > 0 {
		inject = failmap.New(poolPages * failmap.PageSize)
		failmap.GenerateUniform(inject, rate, rand.New(rand.NewSource(99)))
		if cluster > 0 {
			inject = failmap.ClusterHardware(inject, cluster)
		}
	}
	kern := kernel.New(kernel.Config{PCMPages: poolPages, Inject: inject, Clock: clock})
	v := vm.New(vm.Config{
		HeapBytes:    heapBytes,
		Compensate:   rate > 0,
		FailureRate:  rate,
		Collector:    vm.StickyImmix,
		FailureAware: true,
		Kernel:       kern,
		Clock:        clock,
		TraceWorkers: traceWorkers,
	})
	return v, nil
}

func runProfile(t *testing.T, p *Profile, heapBytes int, rate float64, cluster int, iters int) (*vm.VM, error) {
	t.Helper()
	v, err := buildVM(t, heapBytes, rate, cluster, 0)
	if err != nil {
		t.Fatal(err)
	}
	return v, p.Run(v, iters)
}

func TestProfilesValidate(t *testing.T) {
	for _, p := range SuiteWithBuggyLusearch() {
		if err := p.Validate(); err != nil {
			t.Error(err)
		}
	}
}

func TestSuiteNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range SuiteWithBuggyLusearch() {
		if seen[p.Name] {
			t.Fatalf("duplicate benchmark %q", p.Name)
		}
		seen[p.Name] = true
	}
	if len(Suite()) != 12 {
		t.Fatalf("suite has %d benchmarks, want 12", len(Suite()))
	}
	if ByName("pmd") == nil || ByName("nope") != nil {
		t.Fatal("ByName lookup broken")
	}
}

// Every benchmark must complete at its declared minimum heap — that is
// what "minimum heap" means for the paper's heap-size axes.
func TestBenchmarksCompleteAtMinHeap(t *testing.T) {
	for _, p := range Suite() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			if _, err := runProfile(t, p, p.MinHeap(), 0, 0, 0); err != nil {
				t.Fatalf("%s DNF at min heap %d: %v", p.Name, p.MinHeap(), err)
			}
		})
	}
}

// At 2x min heap with 50% two-page-clustered failures — the paper's most
// stressed reported configuration — every benchmark must still complete.
func TestBenchmarksCompleteUnderClusteredFailures(t *testing.T) {
	for _, p := range Suite() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			if _, err := runProfile(t, p, 2*p.MinHeap(), 0.5, 2, 0); err != nil {
				t.Fatalf("%s DNF at 2x heap, 50%% clustered failures: %v", p.Name, err)
			}
		})
	}
}

func TestRunsAreDeterministic(t *testing.T) {
	p := Pmd()
	v1, err1 := runProfile(t, p, 2*p.MinHeap(), 0.25, 2, 60)
	v2, err2 := runProfile(t, p, 2*p.MinHeap(), 0.25, 2, 60)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if v1.Clock().Now() != v2.Clock().Now() {
		t.Fatalf("identical runs diverge: %d vs %d cycles", v1.Clock().Now(), v2.Clock().Now())
	}
	if v1.GCStats().Collections != v2.GCStats().Collections {
		t.Fatal("GC counts diverge between identical runs")
	}
}

func TestWorkloadsTriggerCollections(t *testing.T) {
	p := Sunflow()
	v, err := runProfile(t, p, 2*p.MinHeap(), 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.GCStats().Collections < 3 {
		t.Fatalf("only %d collections; churn too small to exercise the collector",
			v.GCStats().Collections)
	}
}

func TestXalanUsesLOSHeavily(t *testing.T) {
	px, pl := Xalan(), Luindex()
	vx, err := runProfile(t, px, 2*px.MinHeap(), 0, 0, 80)
	if err != nil {
		t.Fatal(err)
	}
	vl, err := runProfile(t, pl, 2*pl.MinHeap(), 0, 0, 80)
	if err != nil {
		t.Fatal(err)
	}
	xl := vx.Clock().Count(stats.EvLOSAlloc)
	ll := vl.Clock().Count(stats.EvLOSAlloc)
	if xl <= 3*ll {
		t.Fatalf("xalan LOS allocs (%d) should dwarf luindex's (%d)", xl, ll)
	}
}

func TestBuggyLusearchAllocatesMore(t *testing.T) {
	buggy, fixed := Lusearch(), LusearchFix()
	vb, err := runProfile(t, buggy, 3*buggy.MinHeap(), 0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	vf, err := runProfile(t, fixed, 3*fixed.MinHeap(), 0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	ab := vb.Clock().Count(stats.EvAllocBytes)
	af := vf.Clock().Count(stats.EvAllocBytes)
	if float64(ab) < 2.5*float64(af) {
		t.Fatalf("buggy lusearch allocation rate %d not ~3x fixed %d", ab, af)
	}
}

func TestMinHeapAnalytic(t *testing.T) {
	for _, p := range Suite() {
		if p.MinHeap() < p.LiveBytes() {
			t.Errorf("%s: min heap %d below live bytes %d", p.Name, p.MinHeap(), p.LiveBytes())
		}
		if p.MinHeap()%(32<<10) != 0 {
			t.Errorf("%s: min heap not block-aligned", p.Name)
		}
	}
}
