package wearmem

import (
	"fmt"
	"math/rand"

	"wearmem/internal/failmap"
	"wearmem/internal/kernel"
	"wearmem/internal/pcm"
	"wearmem/internal/stats"
	"wearmem/internal/vm"
)

// Runtime is an assembled simulation stack: the deterministic clock, an
// optional wearing PCM device, the OS kernel over the PCM pool, and the
// failure-aware managed runtime on top. Open wires the layers in the only
// valid order (clock → device → kernel → VM) so callers cannot mis-stack
// them.
type Runtime struct {
	// Clock is the shared simulated-time source every layer charges.
	Clock *Clock
	// Device is the live wearing PCM module backing the pool, or nil when
	// the pool is plain memory with (at most) statically injected failures.
	Device *Device
	// Kernel is the OS model owning the PCM pool's page frames.
	Kernel *Kernel
	// VM is the managed runtime; allocate and collect through it.
	VM *VM
	// Inject is the static failure map the pool was opened with, or nil.
	Inject *FailureMap
	// Recovery holds the device-state recovery statistics when the runtime
	// was opened WithPersistentImage, or nil for a fresh boot.
	Recovery *RecoverStats

	nMutators int
	muts      []*Mutator
	rec       *stats.LatencyRecorder
}

// openConfig accumulates option values before assembly.
type openConfig struct {
	poolPages    int
	heapBytes    int
	collector    CollectorKind
	lineSize     int
	failureAware bool
	compensate   *bool
	failureRate  float64
	clusterPages int
	inject       *FailureMap
	seed         int64
	engine       string
	mutators     int
	latency      bool
	wearing      bool
	endurance    uint64
	variation    float64
	writeThrough bool
	deviceTune   func(*DeviceConfig)
	pauseBudget  int
	concMark     int
	image        *DeviceImage
	placement    string
	remap        string
}

// Option configures Open.
type Option func(*openConfig)

// WithPoolPages sizes the PCM pool in pages (default 4096 = 16 MB).
func WithPoolPages(pages int) Option { return func(c *openConfig) { c.poolPages = pages } }

// WithHeapBytes sizes the managed heap (default 2 MB).
func WithHeapBytes(n int) Option { return func(c *openConfig) { c.heapBytes = n } }

// WithCollector selects the collector (default StickyImmix).
func WithCollector(k CollectorKind) Option { return func(c *openConfig) { c.collector = k } }

// WithLineSize sets the Immix line size in bytes (default 256, §6.3).
func WithLineSize(n int) Option { return func(c *openConfig) { c.lineSize = n } }

// WithFailureRate statically injects uniform line failures at rate f into
// the pool before the runtime boots and enables the §6.2 heap
// compensation (override with WithCompensation).
func WithFailureRate(f float64) Option { return func(c *openConfig) { c.failureRate = f } }

// WithClusterPages models §3.1.2 failure-clustering hardware with regions
// of the given number of pages, applied to the injected failure map.
func WithClusterPages(pages int) Option { return func(c *openConfig) { c.clusterPages = pages } }

// WithInject supplies an explicit failure map (e.g. from a worn-out
// device) instead of uniform generation; WithClusterPages still applies.
func WithInject(m *FailureMap) Option { return func(c *openConfig) { c.inject = m } }

// WithSeed drives failure-map generation and device endurance variation
// (default 42).
func WithSeed(seed int64) Option { return func(c *openConfig) { c.seed = seed } }

// WithCompensation pins the §6.2 heap compensation on or off; the default
// compensates exactly when a failure rate is configured.
func WithCompensation(on bool) Option { return func(c *openConfig) { c.compensate = &on } }

// WithFailureAware toggles failure awareness in the collector (default
// true — the paper's subject; turn off for baseline comparisons).
func WithFailureAware(on bool) Option { return func(c *openConfig) { c.failureAware = on } }

// WithEngine selects the execution engine: "baton" (default — the
// deterministic cooperative scheduler) or "threaded" (real mutator
// goroutines with stop-the-world rendezvous and parallel trace/sweep).
func WithEngine(name string) Option { return func(c *openConfig) { c.engine = name } }

// WithMutators configures the number of mutator contexts (default 1).
// Fetch handles with Runtime.Mutators or drive a benchmark across them
// with Runtime.RunBenchmark.
func WithMutators(n int) Option { return func(c *openConfig) { c.mutators = n } }

// WithLatencyCapture records per-operation latency during
// Runtime.RunBenchmark on scenario benchmarks (e.g. the kv server);
// retrieve quantiles with Runtime.LatencyReport.
func WithLatencyCapture() Option { return func(c *openConfig) { c.latency = true } }

// WithWearingDevice backs the pool with a live PCM module whose lines
// endure a mean of endurance writes (spread by the given coefficient of
// variation), enabling dynamic failures and the §3.1.1 failure buffer.
func WithWearingDevice(endurance uint64, variation float64) Option {
	return func(c *openConfig) {
		c.wearing = true
		c.endurance = endurance
		c.variation = variation
	}
}

// WithWriteThrough pushes every mutator store through the kernel to the
// wearing device, applying wear and failure-buffer backpressure to the
// workload itself (implies WithWearingDevice has been configured).
func WithWriteThrough() Option { return func(c *openConfig) { c.writeThrough = true } }

// WithDeviceTuning adjusts the wearing device's configuration (wear
// leveling, ECC, buffer sizing, clustering hardware) after the standard
// fields are filled in and before the device is built.
func WithDeviceTuning(tune func(*DeviceConfig)) Option {
	return func(c *openConfig) { c.deviceTune = tune }
}

// WithPauseBudget bounds each GC marking pause to at most budget simulated
// cycles instead of stop-the-world collections. Requires the StickyImmix
// collector (the default). On the baton engine marking proceeds in bounded
// increments between mutator turns, preserving byte-for-byte determinism;
// on the threaded engine it enables concurrent marking (see
// WithConcurrentMark). Defragmentation remains a stop-the-world full
// collection.
func WithPauseBudget(budget int) Option { return func(c *openConfig) { c.pauseBudget = budget } }

// WithConcurrentMark runs marking on n dedicated goroutines while the
// mutators keep executing, bounding pauses to short initial-mark and
// final-mark stop-the-world phases. Requires WithEngine("threaded") and
// the StickyImmix collector; with WithPauseBudget alone the threaded
// engine defaults to one marker per mutator. Ignored (stop-the-world
// fallback) under WithWriteThrough, whose line writeback would race the
// markers.
func WithConcurrentMark(n int) Option { return func(c *openConfig) { c.concMark = n } }

// WithPersistentImage boots the stack over a device image captured by
// Runtime.Snapshot (or pcm snapshotting) instead of a fresh pool: the
// device is restored from the image's durable state, the kernel runs the
// full recovery protocol (drain orphans → rescan → scrub → admit) before
// the runtime boots, and the statistics land in Runtime.Recovery. The pool
// is sized by the image, so WithPoolPages is ignored; the image carries
// the device tuning, so WithWearingDevice, WithDeviceTuning and WithInject
// conflict with it. Open returns ErrDeviceWornOut (test with errors.Is)
// when recovery finds too few usable frames for the configured heap.
func WithPersistentImage(img *DeviceImage) Option {
	return func(c *openConfig) { c.image = img }
}

// WithPlacementPolicy selects the kernel's pluggable frame-placement
// policy by name: "paper" (the default — the paper's stock first-fit
// placement, bit for bit), "rotate" (SoftWear-style wear rotation),
// "decoder" (WoLFRaM-style address-decoder swaps) or "migrate"
// (MigrantStore-style DRAM migration). Policy state persists in the
// device's OS metadata area and survives Snapshot/WithPersistentImage
// round trips under the same policy pair.
func WithPlacementPolicy(name string) Option { return func(c *openConfig) { c.placement = name } }

// WithRemapPolicy selects the kernel's pluggable wear-remapping policy by
// name ("paper", "rotate", "decoder" or "migrate" — see
// WithPlacementPolicy). The non-paper policies observe per-frame write
// wear and migrate hot frames before their lines fail; "paper" performs
// no proactive remapping, exactly matching the paper's behavior.
func WithRemapPolicy(name string) Option { return func(c *openConfig) { c.remap = name } }

// Open assembles a simulation stack from functional options: the clock,
// an optional wearing device, the kernel over the PCM pool, and the
// failure-aware runtime. It replaces the manual NewDevice / NewKernel /
// NewVM wiring:
//
//	rt, err := wearmem.Open(
//	    wearmem.WithPoolPages(4096),
//	    wearmem.WithHeapBytes(2<<20),
//	    wearmem.WithFailureRate(0.25),
//	    wearmem.WithClusterPages(2),
//	)
//	node := rt.VM.RegisterType(...)
func Open(opts ...Option) (*Runtime, error) {
	c := openConfig{
		poolPages:    4096,
		heapBytes:    2 << 20,
		collector:    StickyImmix,
		failureAware: true,
		seed:         42,
		mutators:     1,
	}
	for _, opt := range opts {
		opt(&c)
	}

	threaded := false
	switch c.engine {
	case "", "baton":
	case "threaded":
		threaded = true
	default:
		return nil, fmt.Errorf("wearmem: unknown engine %q (want baton or threaded)", c.engine)
	}
	if c.image != nil {
		if c.wearing {
			return nil, fmt.Errorf("wearmem: WithPersistentImage conflicts with WithWearingDevice (the image carries the device)")
		}
		if c.deviceTune != nil {
			return nil, fmt.Errorf("wearmem: WithPersistentImage conflicts with WithDeviceTuning (the image carries the tuning)")
		}
		if c.inject != nil {
			return nil, fmt.Errorf("wearmem: WithPersistentImage conflicts with WithInject (the image carries the failures)")
		}
		c.poolPages = c.image.Size / PageSize
	}
	if c.poolPages <= 0 {
		return nil, fmt.Errorf("wearmem: pool of %d pages", c.poolPages)
	}
	if c.heapBytes <= 0 {
		return nil, fmt.Errorf("wearmem: heap of %d bytes", c.heapBytes)
	}
	if c.poolPages*PageSize < c.heapBytes {
		return nil, fmt.Errorf("wearmem: %d-page pool cannot hold a %d-byte heap",
			c.poolPages, c.heapBytes)
	}
	if c.failureRate < 0 || c.failureRate >= 1 {
		return nil, fmt.Errorf("wearmem: failure rate %v outside [0, 1)", c.failureRate)
	}
	if c.mutators < 1 {
		return nil, fmt.Errorf("wearmem: %d mutators", c.mutators)
	}
	if c.writeThrough && !c.wearing && c.image == nil {
		return nil, fmt.Errorf("wearmem: WithWriteThrough requires WithWearingDevice or WithPersistentImage")
	}
	if c.pauseBudget < 0 {
		return nil, fmt.Errorf("wearmem: pause budget of %d cycles", c.pauseBudget)
	}
	if c.concMark < 0 {
		return nil, fmt.Errorf("wearmem: %d concurrent markers", c.concMark)
	}
	if (c.pauseBudget > 0 || c.concMark > 0) && c.collector != StickyImmix {
		return nil, fmt.Errorf("wearmem: bounded-pause marking requires the StickyImmix collector")
	}
	if c.concMark > 0 && !threaded {
		return nil, fmt.Errorf("wearmem: WithConcurrentMark requires WithEngine(\"threaded\")")
	}
	if _, err := kernel.NewPlacementPolicy(c.placement); err != nil {
		return nil, fmt.Errorf("wearmem: %w", err)
	}
	if _, err := kernel.NewRemapPolicy(c.remap); err != nil {
		return nil, fmt.Errorf("wearmem: %w", err)
	}

	clock := stats.NewClock(stats.DefaultCosts())

	inject := c.inject
	if inject == nil && c.failureRate > 0 && c.image == nil {
		inject = failmap.New(c.poolPages * PageSize)
		failmap.GenerateUniform(inject, c.failureRate, rand.New(rand.NewSource(c.seed)))
	}
	if inject != nil && c.clusterPages > 0 {
		inject = failmap.ClusterHardware(inject, c.clusterPages)
	}

	var dev *Device
	if c.image != nil {
		var err error
		dev, err = pcm.NewDeviceFromImage(c.image, clock, nil)
		if err != nil {
			return nil, fmt.Errorf("wearmem: restoring device image: %w", err)
		}
	} else if c.wearing {
		dc := DeviceConfig{
			Size:      c.poolPages * PageSize,
			Endurance: c.endurance,
			Variation: c.variation,
			TrackData: true,
			Seed:      c.seed,
		}
		if c.deviceTune != nil {
			c.deviceTune(&dc)
		}
		dev = pcm.NewDevice(dc, clock)
	} else if c.deviceTune != nil {
		return nil, fmt.Errorf("wearmem: WithDeviceTuning requires WithWearingDevice")
	}

	kern := kernel.New(kernel.Config{
		PCMPages:  c.poolPages,
		Inject:    inject,
		Device:    dev,
		Clock:     clock,
		Placement: c.placement,
		Remap:     c.remap,
	})

	var recovery *RecoverStats
	if c.image != nil {
		st, err := kern.Recover(kernel.RecoverOptions{MinFrames: c.heapBytes / PageSize})
		if err != nil {
			return nil, fmt.Errorf("wearmem: device-state recovery: %w", err)
		}
		recovery = &st
	}

	compensate := c.failureRate > 0
	if c.compensate != nil {
		compensate = *c.compensate
	}
	traceWorkers := 0
	if threaded {
		traceWorkers = c.mutators
	}
	v := vm.New(vm.Config{
		HeapBytes:      c.heapBytes,
		Compensate:     compensate,
		FailureRate:    c.failureRate,
		Collector:      c.collector,
		LineSize:       c.lineSize,
		FailureAware:   c.failureAware,
		Threaded:       threaded,
		TraceWorkers:   traceWorkers,
		PauseBudget:    c.pauseBudget,
		ConcurrentMark: c.concMark,
		WriteThrough:   c.writeThrough,
		Kernel:         kern,
		Clock:          clock,
	})

	rt := &Runtime{
		Clock:     clock,
		Device:    dev,
		Kernel:    kern,
		VM:        v,
		Inject:    inject,
		Recovery:  recovery,
		nMutators: c.mutators,
	}
	if c.latency {
		rt.rec = stats.NewLatencyRecorder(c.mutators)
	}
	return rt, nil
}

// MustOpen is Open, panicking on configuration errors.
func MustOpen(opts ...Option) *Runtime {
	rt, err := Open(opts...)
	if err != nil {
		panic(err)
	}
	return rt
}

// Mutators returns the runtime's mutator handles — index 0 is the VM's
// own context, the rest are attached on first call. Use them to drive the
// baton scheduler by hand (RunTasks); for registered benchmarks prefer
// RunBenchmark, which manages its own contexts.
func (rt *Runtime) Mutators() []*Mutator {
	if rt.muts == nil {
		rt.muts = make([]*Mutator, rt.nMutators)
		rt.muts[0] = rt.VM.Mutator0()
		for i := 1; i < rt.nMutators; i++ {
			rt.muts[i] = rt.VM.AttachMutator()
		}
	}
	return rt.muts
}

// RunBenchmark executes a benchmark profile split across the configured
// mutator count on the configured engine, recording per-operation latency
// when the runtime was opened WithLatencyCapture. It attaches its own
// mutator contexts and therefore cannot be mixed with manual Mutators use
// on the same runtime.
func (rt *Runtime) RunBenchmark(b *Benchmark, iterations int) error {
	if rt.muts != nil {
		return fmt.Errorf("wearmem: RunBenchmark after Mutators on the same runtime")
	}
	if rt.rec != nil && b.Body != nil {
		b.Latency = rt.rec.Shard
	}
	return b.RunMutators(rt.VM, iterations, rt.nMutators)
}

// Snapshot captures the device's durable state as a power cut would leave
// it: wear, failures, redirection maps and line contents persist; entries
// pending in the volatile failure buffer are recorded only as torn orphan
// lines, their parked data lost. Reopen the image with WithPersistentImage
// (persist it across processes via EncodeImage/DecodeImage). It errors when
// the runtime has no wearing device — a plain-memory pool has no durable
// state to lose. Call at a quiescent point for a clean-shutdown image, or
// from a probe hook for a mid-operation crash image.
func (rt *Runtime) Snapshot() (*DeviceImage, error) {
	if rt.Device == nil {
		return nil, fmt.Errorf("wearmem: Snapshot requires a device-backed runtime (WithWearingDevice or WithPersistentImage)")
	}
	return rt.Device.Snapshot(), nil
}

// LatencyReport merges the per-mutator latency shards into quantile
// summaries with GC-pause and allocation-stall attribution. It returns
// nil unless the runtime was opened WithLatencyCapture and a benchmark
// recorded operations.
func (rt *Runtime) LatencyReport() *LatencyReport {
	if rt.rec == nil {
		return nil
	}
	if lr := rt.rec.Report(); lr.Ops > 0 {
		return lr
	}
	return nil
}
