package wearmem

import (
	"bytes"
	"errors"
	"testing"

	"wearmem/internal/kv"
)

// Open with no options boots a working default stack: pristine 16 MB
// pool, 2 MB failure-aware Sticky Immix heap, shared clock.
func TestOpenDefaults(t *testing.T) {
	rt, err := Open()
	if err != nil {
		t.Fatal(err)
	}
	if rt.Device != nil || rt.Inject != nil {
		t.Fatal("default stack has a device or injected failures")
	}
	node := rt.VM.RegisterType(&Type{Name: "node", Kind: KindFixed, Size: 16})
	for i := 0; i < 1000; i++ {
		rt.VM.MustNew(node)
	}
	if rt.Clock.Now() == 0 {
		t.Fatal("allocation charged no simulated time")
	}
}

// The quickstart assembly: injected clustered failures, compensated heap,
// allocation and collection around the holes.
func TestOpenWithFailures(t *testing.T) {
	rt := MustOpen(
		WithPoolPages(2048),
		WithHeapBytes(1<<20),
		WithFailureRate(0.25),
		WithClusterPages(2),
		WithSeed(42),
	)
	if rt.Inject == nil || rt.Inject.Rate() == 0 {
		t.Fatal("failure map not injected")
	}
	if rt.Inject.PerfectPages() == 0 {
		t.Fatal("clustering produced no perfect pages at 25%")
	}
	node := rt.VM.RegisterType(&Type{Name: "node", Kind: KindFixed, Size: 24, RefOffsets: []int{8}})
	var head Addr
	rt.VM.AddRoot(&head)
	for i := 0; i < 5000; i++ {
		n := rt.VM.MustNew(node)
		rt.VM.WriteRef(n, 8, head)
		head = n
	}
	rt.VM.Collect(true)
	count := 0
	for a := head; a != 0; a = rt.VM.ReadRef(a, 8) {
		count++
	}
	if count != 5000 {
		t.Fatalf("list has %d nodes after collection, want 5000", count)
	}
}

// Invalid configurations are reported as errors, not panics.
func TestOpenErrors(t *testing.T) {
	cases := map[string][]Option{
		"bad engine":            {WithEngine("warp")},
		"zero pool":             {WithPoolPages(0)},
		"zero heap":             {WithHeapBytes(0)},
		"heap exceeds pool":     {WithPoolPages(1), WithHeapBytes(1 << 20)},
		"bad rate":              {WithFailureRate(1.5)},
		"zero mutators":         {WithMutators(0)},
		"writethrough sans dev": {WithWriteThrough()},
		"tuning sans dev":       {WithDeviceTuning(func(*DeviceConfig) {})},
		"negative budget":       {WithPauseBudget(-1)},
		"budget sans S-IX":      {WithCollector(MarkSweep), WithPauseBudget(10000)},
		"concmark on baton":     {WithConcurrentMark(2)},
		"bad placement":         {WithPlacementPolicy("tetris")},
		"bad remap":             {WithRemapPolicy("tetris")},
	}
	for name, opts := range cases {
		if _, err := Open(opts...); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// Policy options select the kernel's placement/remap pair, and a
// non-paper remap policy actually migrates hot frames under write wear.
func TestOpenPolicyOptions(t *testing.T) {
	rt := MustOpen(
		WithPoolPages(512),
		WithHeapBytes(64<<10),
		WithWearingDevice(1<<30, 0),
		WithWriteThrough(),
		WithPlacementPolicy("rotate"),
		WithRemapPolicy("rotate"),
		WithSeed(7),
	)
	if p, r := rt.Kernel.PolicyNames(); p != "rotate" || r != "rotate" {
		t.Fatalf("policy names = %q/%q, want rotate/rotate", p, r)
	}
	node := rt.VM.RegisterType(&Type{Name: "node", Kind: KindFixed, Size: 64})
	a := rt.VM.MustNew(node)
	for i := 0; i < 5000; i++ {
		rt.VM.WriteWord(a, 0, uint64(i))
	}
	if rt.Kernel.PolicyRemaps() == 0 {
		t.Fatal("rotate remap policy never rotated a worn frame")
	}
}

// A wearing device backs the pool and wears out under writes.
func TestOpenWearingDevice(t *testing.T) {
	rt := MustOpen(
		WithPoolPages(512),
		WithHeapBytes(256<<10),
		WithWearingDevice(2, 0),
		WithSeed(7),
	)
	if rt.Device == nil {
		t.Fatal("no device")
	}
	buf := make([]byte, LineSize)
	rt.Device.Write(3, buf)
	rt.Device.Write(3, buf) // endurance 2: second write fails the line
	if rt.Device.FailedLines() != 1 {
		t.Fatalf("failed lines = %d", rt.Device.FailedLines())
	}
}

// The persistence loop through the facade: wear a device, snapshot it,
// round-trip the image through its wire encoding, reopen the stack over it
// and let recovery rebuild the failure table before the runtime boots.
func TestOpenPersistentImage(t *testing.T) {
	rt := MustOpen(
		WithPoolPages(512),
		WithHeapBytes(256<<10),
		WithWearingDevice(2, 0),
		WithSeed(7),
	)
	buf := make([]byte, LineSize)
	for l := 3; l < 8; l++ {
		rt.Device.Write(l, buf)
		rt.Device.Write(l, buf) // endurance 2: second write fails the line
	}
	img, err := rt.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	var wire bytes.Buffer
	if err := EncodeImage(&wire, img); err != nil {
		t.Fatal(err)
	}
	img2, err := DecodeImage(&wire)
	if err != nil {
		t.Fatal(err)
	}

	rt2, err := Open(
		WithHeapBytes(256<<10),
		WithPersistentImage(img2),
	)
	if err != nil {
		t.Fatal(err)
	}
	if rt2.Recovery == nil {
		t.Fatal("no recovery statistics on a restored runtime")
	}
	if rt2.Recovery.Rediscovered != 5 {
		t.Fatalf("recovery rediscovered %d failed lines, want 5", rt2.Recovery.Rediscovered)
	}
	if rep := VerifyRecovered(RecoveredTarget{
		Pool: rt2.Kernel, Scan: rt2.Device, Clusters: rt2.Device,
	}); !rep.Ok() {
		t.Fatalf("recovered state failed verification: %v", rep.Err())
	}
	node := rt2.VM.RegisterType(&Type{Name: "node", Kind: KindFixed, Size: 16})
	for i := 0; i < 1000; i++ {
		rt2.VM.MustNew(node)
	}
	rt2.VM.Collect(true)

	// Conflicting and invalid persistence configurations are errors.
	if _, err := Open(WithPersistentImage(img2), WithWearingDevice(2, 0)); err == nil {
		t.Error("image + wearing device accepted")
	}
	if _, err := Open(WithPersistentImage(img2), WithInject(NewFailureMap(512*PageSize))); err == nil {
		t.Error("image + injected map accepted")
	}
	if _, err := Open(WithPersistentImage(img2), WithDeviceTuning(func(*DeviceConfig) {})); err == nil {
		t.Error("image + device tuning accepted")
	}
	if _, err := MustOpen().Snapshot(); err == nil {
		t.Error("snapshot of a deviceless runtime accepted")
	}
}

// A heap the recovered device cannot hold is the typed graceful terminal,
// reported through errors.Is, never a panic.
func TestOpenPersistentImageWornOut(t *testing.T) {
	rt := MustOpen(WithPoolPages(64), WithHeapBytes(64<<10), WithWearingDevice(2, 0))
	buf := make([]byte, LineSize)
	for l := 0; l < rt.Device.Lines(); l++ {
		rt.Device.Write(l, buf)
		rt.Device.Write(l, buf)
	}
	img, err := rt.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	_, err = Open(WithHeapBytes(64<<10), WithPersistentImage(img))
	if !errors.Is(err, ErrDeviceWornOut) {
		t.Fatalf("opening over a worn-out image: %v, want ErrDeviceWornOut", err)
	}
}

// WithLatencyCapture + RunBenchmark on a scenario benchmark yields a
// quantile report; on the baton engine it is deterministic.
func TestOpenLatencyCapture(t *testing.T) {
	name := kv.MustRegister(kv.Config{})
	run := func() *LatencyReport {
		rt := MustOpen(
			WithPoolPages(4096),
			WithHeapBytes(2*BenchmarkByName(name).MinHeap()),
			WithMutators(2),
			WithLatencyCapture(),
		)
		if err := rt.RunBenchmark(BenchmarkByName(name), 40); err != nil {
			t.Fatal(err)
		}
		lr := rt.LatencyReport()
		if lr == nil || lr.Ops == 0 {
			t.Fatal("no latency recorded")
		}
		return lr
	}
	a, b := run(), run()
	if *a != *b {
		t.Fatalf("baton latency reports differ:\n%+v\n%+v", a, b)
	}
	if a.Overall.P50 == 0 || a.Overall.P50 > a.Overall.P99 {
		t.Fatalf("quantiles out of order: %+v", a.Overall)
	}
}

// The threaded engine runs the same benchmark on real goroutines.
func TestOpenThreadedEngine(t *testing.T) {
	name := kv.MustRegister(kv.Config{})
	rt := MustOpen(
		WithPoolPages(4096),
		WithHeapBytes(2*BenchmarkByName(name).MinHeap()),
		WithEngine("threaded"),
		WithMutators(2),
		WithLatencyCapture(),
	)
	if err := rt.RunBenchmark(BenchmarkByName(name), 30); err != nil {
		t.Fatal(err)
	}
	if lr := rt.LatencyReport(); lr == nil || lr.Ops != 30*128 {
		t.Fatalf("latency report: %+v", lr)
	}
}

// WithPauseBudget on the baton engine runs incremental cycles with every
// pause under the budget's reach, deterministically; WithConcurrentMark
// on the threaded engine runs concurrent cycles.
func TestOpenPauseBudget(t *testing.T) {
	name := kv.MustRegister(kv.Config{})
	run := func() (*LatencyReport, int) {
		rt := MustOpen(
			WithPoolPages(4096),
			WithHeapBytes(2*BenchmarkByName(name).MinHeap()),
			WithMutators(2),
			WithLatencyCapture(),
			WithPauseBudget(10000),
		)
		if err := rt.RunBenchmark(BenchmarkByName(name), 40); err != nil {
			t.Fatal(err)
		}
		return rt.LatencyReport(), rt.VM.GCStats().IncrementalCycles
	}
	a, an := run()
	b, bn := run()
	if *a != *b || an != bn {
		t.Fatalf("baton bounded-pause runs differ: %+v/%d vs %+v/%d", a, an, b, bn)
	}
	if an == 0 {
		t.Fatal("no incremental cycles ran under WithPauseBudget")
	}

	rt := MustOpen(
		WithPoolPages(4096),
		WithHeapBytes(2*BenchmarkByName(name).MinHeap()),
		WithEngine("threaded"),
		WithMutators(2),
		WithPauseBudget(10000),
		WithConcurrentMark(2),
	)
	if err := rt.RunBenchmark(BenchmarkByName(name), 150); err != nil {
		t.Fatal(err)
	}
	if rt.VM.GCStats().ConcurrentCycles == 0 {
		t.Fatal("no concurrent cycles ran under WithConcurrentMark")
	}
}

// Manual mutator handles: stable across calls, correct count, and
// incompatible with RunBenchmark (which attaches its own contexts).
func TestOpenManualMutators(t *testing.T) {
	rt := MustOpen(WithMutators(3))
	muts := rt.Mutators()
	if len(muts) != 3 {
		t.Fatalf("%d mutators, want 3", len(muts))
	}
	if again := rt.Mutators(); &again[0] != &muts[0] {
		t.Fatal("Mutators not idempotent")
	}
	if err := rt.RunBenchmark(BenchmarkByName("pmd"), 1); err == nil {
		t.Fatal("RunBenchmark allowed after manual Mutators")
	}
}
