// Package wearmem reproduces "Using Managed Runtime Systems to Tolerate
// Holes in Wearable Memories" (Gao, Strauss, Blackburn, McKinley, Burger,
// Larus — PLDI 2013) as an executable simulation.
//
// The package is a facade over the implementation packages:
//
//   - failure maps and clustering:       internal/failmap, internal/cluster
//   - the PCM device model:              internal/pcm
//   - the operating system model:        internal/kernel
//   - the collectors (Immix et al.):     internal/core over internal/heap
//   - the managed runtime:               internal/vm
//   - benchmarks and experiments:        internal/workload, internal/harness
//
// Open assembles a complete failure-tolerant stack — clock, optional
// wearing PCM device, OS kernel, managed runtime — from functional
// options:
//
//	rt := wearmem.MustOpen(
//	    wearmem.WithPoolPages(4096),       // 16 MB PCM pool
//	    wearmem.WithHeapBytes(2<<20),      // 2 MB managed heap
//	    wearmem.WithFailureRate(0.25),     // 25% of lines failed
//	    wearmem.WithClusterPages(2),       // §3.1.2 clustering hardware
//	)
//
// after which rt.VM.New / rt.VM.NewArray allocate objects that the
// failure-aware collector keeps clear of failed lines, moving them when
// lines fail during execution. See examples/ for complete programs and
// cmd/wearbench for the experiment harness that regenerates the paper's
// figures.
package wearmem

import (
	"wearmem/internal/chaos"
	"wearmem/internal/failmap"
	"wearmem/internal/harness"
	"wearmem/internal/heap"
	"wearmem/internal/kernel"
	"wearmem/internal/pcm"
	"wearmem/internal/probe"
	"wearmem/internal/sched"
	"wearmem/internal/stats"
	"wearmem/internal/verify"
	"wearmem/internal/vm"
	"wearmem/internal/workload"
)

// Memory geometry (the paper's: 64 B PCM lines, 4 KB pages).
const (
	LineSize     = failmap.LineSize
	PageSize     = failmap.PageSize
	LinesPerPage = failmap.LinesPerPage
)

// Failure maps (internal/failmap).
type FailureMap = failmap.Map

// NewFailureMap returns an all-working failure map covering size bytes.
func NewFailureMap(size int) *FailureMap { return failmap.New(size) }

// GenerateUniform injects uniform line failures with probability p.
var GenerateUniform = failmap.GenerateUniform

// GenerateClustered injects failures pre-clustered at a power-of-two
// granularity (the §6.4 limit study).
var GenerateClustered = failmap.GenerateClustered

// ClusterHardware applies the §3.1.2 failure-clustering transform with
// regions of the given number of pages.
var ClusterHardware = failmap.ClusterHardware

// The PCM device model (internal/pcm).
type (
	// Device is a simulated PCM module with write endurance, a failure
	// buffer and optional wear leveling and clustering hardware.
	Device = pcm.Device
	// DeviceConfig parametrizes a Device.
	DeviceConfig = pcm.Config
	// WearLeveling selects the device's wear-leveling scheme.
	WearLeveling = pcm.WearLeveling
)

// NewDevice builds a PCM module.
//
// Deprecated: use Open with WithWearingDevice (and WithDeviceTuning for
// the remaining DeviceConfig fields); it wires the device into the kernel
// and clock in the only valid order.
func NewDevice(cfg DeviceConfig, clock *Clock) *Device { return pcm.NewDevice(cfg, clock) }

// Wear-leveling policies.
const (
	NoWearLeveling = pcm.NoWearLeveling
	StartGap       = pcm.StartGap
)

// Crash-consistent persistence (internal/pcm, internal/kernel): a
// DeviceImage is the durable state a power failure leaves behind;
// WithPersistentImage restores it and runs the kernel recovery protocol
// before the runtime boots.
type (
	// DeviceImage is the serializable durable state of a PCM module —
	// wear, failures, redirection maps, line contents. The volatile
	// failure buffer is not captured: its entries survive only as torn
	// OrphanLine records.
	DeviceImage = pcm.DeviceImage
	// OrphanLine is one failure-buffer entry lost to a power cut.
	OrphanLine = pcm.OrphanLine
	// RecoverOptions tune the kernel's device-state recovery.
	RecoverOptions = kernel.RecoverOptions
	// RecoverStats reports what recovery found and repaired; see
	// Runtime.Recovery.
	RecoverStats = kernel.RecoverStats
)

// EncodeImage writes a device image in its wire encoding.
var EncodeImage = pcm.EncodeImage

// DecodeImage reads a device image written by EncodeImage.
var DecodeImage = pcm.DecodeImage

// ErrDeviceWornOut is the typed graceful terminal: recovery found too few
// usable frames. Open returns it wrapped; test with errors.Is.
var ErrDeviceWornOut = kernel.ErrDeviceWornOut

// The operating system model (internal/kernel).
type (
	// Kernel owns physical page frames, the failure table and the
	// debit-credit perfect-page accounting.
	Kernel = kernel.Kernel
	// KernelConfig parametrizes a Kernel.
	KernelConfig = kernel.Config
)

// NewKernel builds the OS over the configured physical memory.
//
// Deprecated: use Open, which builds the kernel over the pool, the
// injected failure map and the optional wearing device for you.
func NewKernel(cfg KernelConfig) *Kernel { return kernel.New(cfg) }

// The managed runtime (internal/vm) and its object model (internal/heap).
type (
	// VM is a failure-aware managed runtime instance.
	VM = vm.VM
	// VMConfig parametrizes a VM.
	VMConfig = vm.Config
	// Addr is a reference into the simulated heap; 0 is nil.
	Addr = heap.Addr
	// Type describes a class of heap objects.
	Type = heap.Type
)

// NewVM builds a runtime over a kernel.
//
// Deprecated: use Open, which assembles clock, device, kernel and VM with
// consistent failure-rate, compensation and engine settings.
func NewVM(cfg VMConfig) *VM { return vm.New(cfg) }

// CollectorKind selects the collection algorithm (Fig. 3).
type CollectorKind = vm.CollectorKind

// Collector kinds (Fig. 3).
const (
	Immix           = vm.Immix
	StickyImmix     = vm.StickyImmix
	MarkSweep       = vm.MarkSweep
	StickyMarkSweep = vm.StickyMarkSweep
)

// Object kinds for Type registration.
const (
	KindFixed       = heap.KindFixed
	KindRefArray    = heap.KindRefArray
	KindScalarArray = heap.KindScalarArray
)

// The deterministic cost model (internal/stats).
type (
	// Clock accumulates simulated time.
	Clock = stats.Clock
	// Cycles is the unit of simulated time.
	Cycles = stats.Cycles
)

// NewClock returns a clock charging the calibrated default costs.
func NewClock() *Clock { return stats.NewClock(stats.DefaultCosts()) }

// Benchmarks and experiments (internal/workload, internal/harness).
type (
	// Benchmark is one DaCapo-shaped synthetic mutator profile.
	Benchmark = workload.Profile
	// Experiment regenerates one figure or table of the paper.
	Experiment = harness.Experiment
	// ExperimentOptions control experiment scale.
	ExperimentOptions = harness.Options
	// Runner memoizes benchmark runs across experiments.
	Runner = harness.Runner
	// RunConfig is one benchmark × configuration point.
	RunConfig = harness.RunConfig
	// RunResult is the outcome of one configuration run.
	RunResult = harness.Result
)

// NewRunner returns a memoizing benchmark runner.
func NewRunner() *Runner { return harness.NewRunner() }

// Per-operation latency capture (internal/stats); enable on a Runtime
// with WithLatencyCapture or on a RunConfig with its Latency field.
type (
	// LatencyReport summarizes request latency with GC-pause and
	// allocation-stall attribution.
	LatencyReport = stats.LatencyReport
	// QuantileSummary is one latency distribution digest (p50..p999).
	QuantileSummary = stats.QuantileSummary
)

// Benchmarks returns the 12-benchmark suite.
func Benchmarks() []*Benchmark { return workload.Suite() }

// BenchmarkByName returns a benchmark by its DaCapo name, or nil.
func BenchmarkByName(name string) *Benchmark { return workload.ByName(name) }

// Experiments returns every figure/table experiment in order.
func Experiments() []Experiment { return harness.All() }

// ExperimentByID returns one experiment (e.g. "fig4"), or nil. Beyond the
// paper's figures this also resolves the implementation studies excluded
// from Experiments(), e.g. "mutscale".
func ExperimentByID(id string) *Experiment { return harness.ByID(id) }

// Multi-mutator runtime (internal/vm, internal/sched, internal/workload).
//
// A VM hands out mutators — Mutator0 shares the VM's own allocation
// context, AttachMutator adds one with a private Immix context — and the
// deterministic baton scheduler interleaves them: a mutator unparks when
// it receives the baton, allocates, parks at a safepoint and yields. Same
// seed, same schedule, byte-identical runs at any mutator count.
type (
	// Mutator is one mutator thread's view of a VM: private allocation
	// context, shared heap, loads/stores/barriers on the VM's paths.
	Mutator = vm.Mutator
	// Yielder hands the baton back to the scheduler inside a TaskFunc.
	Yielder = sched.Yielder
	// TaskFunc is one cooperatively scheduled task.
	TaskFunc = sched.Func
)

// RunTasks drives the tasks round-robin on the deterministic baton
// scheduler until all return; the first error aborts the rest.
func RunTasks(tasks ...TaskFunc) error { return sched.Run(tasks...) }

// RunBenchmarkMutators executes a benchmark split across the given number
// of mutators (1 = the exact historical serial run).
func RunBenchmarkMutators(p *Benchmark, v *VM, iterations, mutators int) error {
	return p.RunMutators(v, iterations, mutators)
}

// Instrumentation probes (internal/probe).
type (
	// ProbePoint identifies one instrumented phase boundary.
	ProbePoint = probe.Point
	// ProbeHook observes probe points; install via DeviceConfig.Probe,
	// KernelConfig.Probe and VMConfig.Probe.
	ProbeHook = probe.Hook
)

// The production heap verifier (internal/verify).
type (
	// VerifyReport lists invariant violations; Ok reports none.
	VerifyReport = verify.Report
	// VerifyTarget is the runtime state handed to VerifyHeap.
	VerifyTarget = verify.Target
	// VerifyOptions disables invariant families that are unsound at the
	// instant of the check.
	VerifyOptions = verify.Options
	// ContextView is one mutator context's allocation state, consumed by
	// VerifyMutators.
	ContextView = verify.ContextView
)

// VerifyHeap checks the live heap: graph soundness, span overlap, line
// states, the kernel failure table and the device failure buffer.
var VerifyHeap = verify.Heap

// VerifyMutators checks per-mutator context ownership: no two contexts
// share a block, every cursor within its own block's bounds.
var VerifyMutators = verify.Mutators

// RecoveredTarget is the post-recovery state handed to VerifyRecovered: a
// Kernel satisfies Pool and a Device satisfies Scan and Clusters directly.
type RecoveredTarget = verify.RecoveredTarget

// VerifyRecovered cross-checks a recovered kernel failure table against a
// device ground-truth scan, in both directions — a resurrected failed line
// is the dangerous one — plus buffer residue and redirection-map sanity.
var VerifyRecovered = verify.Recovered

// Fault-injection torture (internal/chaos).
type (
	// TortureOptions size a torture run.
	TortureOptions = chaos.Options
	// TortureConfig is one runtime configuration under torture.
	TortureConfig = chaos.TortureConfig
	// TortureSummary aggregates the campaigns, fit for a CI artifact.
	TortureSummary = chaos.Summary
	// TortureCampaign is one deterministic injection schedule.
	TortureCampaign = chaos.Campaign
)

// Torture runs the fault-injection suite: deterministic campaigns on every
// configuration with the heap verifier at each collection boundary.
func Torture(opt TortureOptions) *TortureSummary { return chaos.Run(opt) }

// NewTortureCampaign derives a campaign's injection schedule from a seed.
var NewTortureCampaign = chaos.NewCampaign

// TortureConfigs is every collector × failure-awareness combination.
var TortureConfigs = chaos.AllConfigs

// Crash campaigns (internal/chaos): torture runs that end in a power cut,
// then restore → recover → verify → resume over the worn device.
type (
	// CrashRecord is the outcome of one crash campaign.
	CrashRecord = chaos.CrashRecord
	// CrashSummary aggregates a crash sweep, fit for a CI artifact.
	CrashSummary = chaos.CrashSummary
	// TortureEvent is one scheduled injection ("point@N:action"); append
	// one with Act ActPowerCut to a TortureCampaign to make it a crash
	// campaign.
	TortureEvent = chaos.Event
	// TortureAction is what a TortureEvent does when it fires.
	TortureAction = chaos.Action
)

// Torture actions a facade user schedules; the verifier-bait actions
// (silent-taint, smash-header) stay internal to the break modes.
const (
	// ActFailHere permanently fails the PCM line behind the probed address.
	ActFailHere = chaos.ActFailHere
	// ActBufferStorm stalls the device with a failure-buffer flood.
	ActBufferStorm = chaos.ActBufferStorm
	// ActPowerCut snapshots the device's durable state and ends the run.
	ActPowerCut = chaos.ActPowerCut
)

// ParseTortureEvent parses the "point@N:action" schedule syntax that
// TortureEvent.String renders (the syntax wearsim repro commands use).
var ParseTortureEvent = chaos.ParseEvent

// RunCrashCampaign executes one crash campaign: the doomed run until the
// power cut, then restore, kernel recovery, recovered-state verification
// and a resumed workload over the worn device.
var RunCrashCampaign = chaos.RunCrashCampaign

// CrashSweep cuts power at every probe point across the crash
// configurations and seeds; every campaign must end verifier-clean or
// gracefully worn out.
var CrashSweep = chaos.CrashSweep

// CrashConfigs is the configuration matrix CrashSweep exercises.
var CrashConfigs = chaos.CrashConfigs

// MinimizeCrash greedily shrinks a failing crash campaign's schedule while
// the failure still reproduces; the power-cut event is never dropped.
var MinimizeCrash = chaos.MinimizeCrash
