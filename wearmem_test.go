package wearmem

import (
	"math/rand"
	"testing"
)

// TestPublicAPIEndToEnd drives the facade the way the README quickstart
// does: worn pool → clustering → OS → failure-aware runtime → allocation
// around holes → collection.
func TestPublicAPIEndToEnd(t *testing.T) {
	const poolPages = 2048
	inject := NewFailureMap(poolPages * PageSize)
	GenerateUniform(inject, 0.25, rand.New(rand.NewSource(42)))
	inject = ClusterHardware(inject, 2)
	if inject.PerfectPages() == 0 {
		t.Fatal("clustering produced no perfect pages at 25%")
	}

	clock := NewClock()
	kern := NewKernel(KernelConfig{PCMPages: poolPages, Inject: inject, Clock: clock})
	v := NewVM(VMConfig{
		HeapBytes: 1 << 20, Compensate: true, FailureRate: 0.25,
		Collector: StickyImmix, FailureAware: true,
		Kernel: kern, Clock: clock,
	})

	node := v.RegisterType(&Type{Name: "node", Kind: KindFixed, Size: 24, RefOffsets: []int{8}})
	var head Addr
	v.AddRoot(&head)
	for i := 0; i < 5000; i++ {
		n := v.MustNew(node)
		v.WriteWord(n, 16, uint64(i))
		v.WriteRef(n, 8, head)
		head = n
	}
	v.Collect(true)
	count := 0
	for a := head; a != 0; a = v.ReadRef(a, 8) {
		count++
	}
	if count != 5000 {
		t.Fatalf("list has %d nodes after collection, want 5000", count)
	}
	if clock.Now() == 0 {
		t.Fatal("no simulated time elapsed")
	}
}

func TestPublicRegistries(t *testing.T) {
	if len(Benchmarks()) != 12 {
		t.Fatalf("suite has %d benchmarks", len(Benchmarks()))
	}
	if BenchmarkByName("pmd") == nil || BenchmarkByName("nope") != nil {
		t.Fatal("BenchmarkByName broken")
	}
	if len(Experiments()) != 16 {
		t.Fatalf("registry has %d experiments", len(Experiments()))
	}
	if ExperimentByID("fig9a") == nil {
		t.Fatal("ExperimentByID broken")
	}
}

func TestPublicDevice(t *testing.T) {
	d := NewDevice(DeviceConfig{Size: 4 * PageSize, Endurance: 2, TrackData: true}, NewClock())
	buf := make([]byte, LineSize)
	d.Write(9, buf)
	d.Write(9, buf) // endurance 2: second write fails the line
	if d.FailedLines() != 1 {
		t.Fatalf("failed lines = %d", d.FailedLines())
	}
	if _, ok := d.Drain(); !ok {
		t.Fatal("failure record not queued")
	}
}
